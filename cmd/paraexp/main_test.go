package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"paradl/internal/workload"
)

// testOptions returns quick-run settings for every experiment family.
func testOptions() options {
	return options{
		trials: 2, congested: 0.5, seed: 1,
		benchIters:    1,
		serveRequests: 1, serveConcurrency: 1, serveCold: 1,
		scenarios: 1, workloadSeed: 1, replayIters: 1,
	}
}

func TestRunSingleExperiments(t *testing.T) {
	for _, exp := range []string{"table5", "fig7", "fig8"} {
		var buf bytes.Buffer
		if err := run(&buf, exp, testOptions()); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s produced no output", exp)
		}
	}
}

func TestRunRejectsUnknown(t *testing.T) {
	var buf bytes.Buffer
	err := run(&buf, "fig99", testOptions())
	if err == nil {
		t.Fatal("unknown experiment must error")
	}
	// The error must enumerate the registry so the user can self-serve
	// — the whole point of the registered descriptions.
	for _, name := range []string{"table3", "fig6", "benchdist", "servebench", "trace", "scoreboard"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("unknown-experiment error does not list %q:\n%v", name, err)
		}
	}
}

func TestRunCSVMode(t *testing.T) {
	var buf bytes.Buffer
	o := testOptions()
	o.csv = true
	if err := run(&buf, "fig6", o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "series,bytes,") {
		t.Fatalf("csv output missing header: %q", out[:40])
	}
}

// TestBenchDistSnapshot: the perf snapshot decodes, covers every
// strategy, and carries positive measurements — one timed iteration to
// keep the test quick.
func TestBenchDistSnapshot(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "benchdist", testOptions()); err != nil {
		t.Fatal(err)
	}
	var snap BenchSnapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if err := snap.Check(BenchDistSchema, BenchDistVersion); err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"sequential": false, "data": false, "spatial": false, "filter": false,
		"channel": false, "pipeline": false, "data+filter": false, "data+spatial": false,
	}
	exchanges := map[string]bool{"data": true, "spatial": true,
		"data+filter": true, "data+spatial": true, "data+pipeline": true}
	for _, c := range snap.Cases {
		want[c.Name] = true
		if c.NsPerOp <= 0 || c.AllocsPerOp <= 0 {
			t.Fatalf("%s p=%d: non-positive measurement %+v", c.Name, c.P, c)
		}
		// Every partitioned case carries both overlap A/B columns;
		// serial has no exchange to toggle.
		if c.P > 1 && (c.NsPerOpOverlap <= 0 || c.NsPerOpBlocking <= 0) {
			t.Fatalf("%s p=%d: missing overlap A/B columns %+v", c.Name, c.P, c)
		}
		// The A/B pins a bucket size at which buckets fill mid-backward,
		// so strategies WITH a gradient exchange must actually launch
		// nonblocking collectives in the overlap run — visible as extra
		// allocations vs the synchronous run. (Pure filter/channel/
		// pipeline have no cross-PE gradient exchange, so their A/B is
		// legitimately flat.)
		if exchanges[c.Name] && c.AllocsPerOpOverlap <= c.AllocsPerOpBlocking {
			t.Fatalf("%s p=%d: overlap run launched nothing (allocs %d <= blocking %d)",
				c.Name, c.P, c.AllocsPerOpOverlap, c.AllocsPerOpBlocking)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Fatalf("snapshot is missing strategy %q", name)
		}
	}
}

// TestServeBenchSnapshot: the planner load snapshot decodes and the
// cached path actually bypasses computation — a tiny run to keep the
// test quick.
func TestServeBenchSnapshot(t *testing.T) {
	var buf bytes.Buffer
	o := testOptions()
	o.serveRequests, o.serveConcurrency, o.serveCold = 200, 4, 4
	if err := run(&buf, "servebench", o); err != nil {
		t.Fatal(err)
	}
	var snap ServeBenchSnapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if err := snap.Check(BenchServeSchema, BenchServeVersion); err != nil {
		t.Fatal(err)
	}
	if snap.Cold.Errors != 0 || snap.Cached.Errors != 0 {
		t.Fatalf("load errors: %+v", snap)
	}
	if snap.Cached.QPS <= 0 || snap.Cold.QPS <= 0 {
		t.Fatalf("non-positive throughput: %+v", snap)
	}
	// 4 cold keys + 1 cached warm-up; the 200 cached requests must not
	// add computations.
	if snap.Computations != 5 {
		t.Fatalf("computations = %d, want 5", snap.Computations)
	}
	if snap.CacheHitRate <= 0.9 {
		t.Fatalf("cache hit rate %.3f, want > 0.9", snap.CacheHitRate)
	}
}

// TestDescribeExperiments: the usage listing names every registered
// experiment with a non-empty description — the satellite contract that
// `paraexp -h` and unknown -exp values are self-documenting.
func TestDescribeExperiments(t *testing.T) {
	listing := describeExperiments(false)
	for _, x := range append(registry(false), experiment{name: "all"}) {
		if !strings.Contains(listing, x.name) {
			t.Errorf("usage listing is missing %q", x.name)
		}
	}
	for _, x := range registry(false) {
		if x.desc == "" {
			t.Errorf("experiment %q has no description", x.name)
		}
		if x.run == nil {
			t.Errorf("experiment %q has no runner", x.name)
		}
	}
}

// TestTraceExperiment: -exp trace emits a valid trace that regenerates
// byte-identically from its own header.
func TestTraceExperiment(t *testing.T) {
	var buf bytes.Buffer
	o := testOptions()
	o.scenarios, o.workloadSeed = 4, 9
	if err := run(&buf, "trace", o); err != nil {
		t.Fatal(err)
	}
	h, scs, err := workload.ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if h.Spec.Seed != 9 || h.Spec.N != 4 || len(scs) != 4 {
		t.Fatalf("trace header %+v over %d scenarios, want seed 9 N 4", h, len(scs))
	}
	var again bytes.Buffer
	if err := run(&again, "trace", o); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("-exp trace is not byte-reproducible at a fixed seed")
	}
}

// TestScoreboardExperiment: -exp scoreboard on a tiny sweep emits a
// valid self-identifying artefact, and -trace replays a recorded trace
// to the same scenario set.
func TestScoreboardExperiment(t *testing.T) {
	var buf bytes.Buffer
	o := testOptions()
	o.scenarios, o.workloadSeed = 2, 11
	if err := run(&buf, "scoreboard", o); err != nil {
		t.Fatal(err)
	}
	var sb workload.Scoreboard
	if err := json.Unmarshal(buf.Bytes(), &sb); err != nil {
		t.Fatalf("scoreboard is not valid JSON: %v", err)
	}
	if err := sb.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(sb.Scenarios) != 2 {
		t.Fatalf("scoreboard has %d scenarios, want 2", len(sb.Scenarios))
	}

	// Round-trip via a trace file: same spec, same trace digest.
	var trace bytes.Buffer
	if err := run(&trace, "trace", o); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := os.WriteFile(path, trace.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var replayed bytes.Buffer
	o.traceFile = path
	if err := run(&replayed, "scoreboard", o); err != nil {
		t.Fatal(err)
	}
	var sb2 workload.Scoreboard
	if err := json.Unmarshal(replayed.Bytes(), &sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.TraceSHA256 != sb.TraceSHA256 || sb2.Spec != sb.Spec {
		t.Fatalf("trace-file replay drifted: %s/%+v vs %s/%+v",
			sb2.TraceSHA256, sb2.Spec, sb.TraceSHA256, sb.Spec)
	}
}
