package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRunSingleExperiments(t *testing.T) {
	for _, exp := range []string{"table5", "fig7", "fig8"} {
		var buf bytes.Buffer
		if err := run(&buf, exp, 2, 0.5, 1, false, 1, 1, 1, 1); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s produced no output", exp)
		}
	}
}

func TestRunRejectsUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "fig99", 2, 0.5, 1, false, 1, 1, 1, 1); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestRunCSVMode(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "fig6", 2, 0.5, 1, true, 1, 1, 1, 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "series,bytes,") {
		t.Fatalf("csv output missing header: %q", out[:40])
	}
}

// TestBenchDistSnapshot: the perf snapshot decodes, covers every
// strategy, and carries positive measurements — one timed iteration to
// keep the test quick.
func TestBenchDistSnapshot(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "benchdist", 2, 0.5, 1, false, 1, 1, 1, 1); err != nil {
		t.Fatal(err)
	}
	var snap BenchSnapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	want := map[string]bool{
		"sequential": false, "data": false, "spatial": false, "filter": false,
		"channel": false, "pipeline": false, "data+filter": false, "data+spatial": false,
	}
	exchanges := map[string]bool{"data": true, "spatial": true,
		"data+filter": true, "data+spatial": true, "data+pipeline": true}
	for _, c := range snap.Cases {
		want[c.Name] = true
		if c.NsPerOp <= 0 || c.AllocsPerOp <= 0 {
			t.Fatalf("%s p=%d: non-positive measurement %+v", c.Name, c.P, c)
		}
		// Every partitioned case carries both overlap A/B columns;
		// serial has no exchange to toggle.
		if c.P > 1 && (c.NsPerOpOverlap <= 0 || c.NsPerOpBlocking <= 0) {
			t.Fatalf("%s p=%d: missing overlap A/B columns %+v", c.Name, c.P, c)
		}
		// The A/B pins a bucket size at which buckets fill mid-backward,
		// so strategies WITH a gradient exchange must actually launch
		// nonblocking collectives in the overlap run — visible as extra
		// allocations vs the synchronous run. (Pure filter/channel/
		// pipeline have no cross-PE gradient exchange, so their A/B is
		// legitimately flat.)
		if exchanges[c.Name] && c.AllocsPerOpOverlap <= c.AllocsPerOpBlocking {
			t.Fatalf("%s p=%d: overlap run launched nothing (allocs %d <= blocking %d)",
				c.Name, c.P, c.AllocsPerOpOverlap, c.AllocsPerOpBlocking)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Fatalf("snapshot is missing strategy %q", name)
		}
	}
}

// TestServeBenchSnapshot: the planner load snapshot decodes and the
// cached path actually bypasses computation — a tiny run to keep the
// test quick.
func TestServeBenchSnapshot(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "servebench", 2, 0.5, 1, false, 1, 200, 4, 4); err != nil {
		t.Fatal(err)
	}
	var snap ServeBenchSnapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if snap.Cold.Errors != 0 || snap.Cached.Errors != 0 {
		t.Fatalf("load errors: %+v", snap)
	}
	if snap.Cached.QPS <= 0 || snap.Cold.QPS <= 0 {
		t.Fatalf("non-positive throughput: %+v", snap)
	}
	// 4 cold keys + 1 cached warm-up; the 200 cached requests must not
	// add computations.
	if snap.Computations != 5 {
		t.Fatalf("computations = %d, want 5", snap.Computations)
	}
	if snap.CacheHitRate <= 0.9 {
		t.Fatalf("cache hit rate %.3f, want > 0.9", snap.CacheHitRate)
	}
}
