package main

import (
	"encoding/json"
	"io"

	"paradl/internal/artifact"
	"paradl/internal/report"
)

// The phases experiment is the observability artefact: the committed
// measured-vs-projected per-phase table. Every plan of the fixed matrix
// (all eight strategies on tinycnn-nobn and tinyresnet) runs for REAL
// under the trace recorder, its wall clock decomposes into the closed
// phase vocabulary, and each row joins that decomposition against the
// oracle's analytic breakdown of the same plan:
//
//	paraexp -exp phases > PHASES.json
const (
	phasesSchema  = "paradl/phases"
	phasesVersion = 1
)

// PhasesSummary aggregates the table; the CI gate reads it with jq.
type PhasesSummary struct {
	Rows        int     `json:"rows"`
	Models      int     `json:"models"`
	MinCoverage float64 `json:"min_coverage"`
}

// PhasesReport is the committed PHASES.json payload.
type PhasesReport struct {
	artifact.Header
	GlobalBatch int               `json:"global_batch"`
	Iterations  int               `json:"iterations"`
	Rows        []report.PhaseRow `json:"rows"`
	Summary     PhasesSummary     `json:"summary"`
}

// writePhases traces the plan matrix and emits the report.
func writePhases(w io.Writer, e *report.Env) error {
	rows, err := e.PhaseBreakdown()
	if err != nil {
		return err
	}
	rep := &PhasesReport{
		Header:      artifact.NewHeader(phasesSchema, phasesVersion),
		GlobalBatch: report.PhaseBatch,
		Iterations:  report.PhaseIters,
		Rows:        rows,
		Summary:     PhasesSummary{Rows: len(rows), MinCoverage: 1},
	}
	models := map[string]bool{}
	for _, r := range rows {
		models[r.Model] = true
		if r.Coverage < rep.Summary.MinCoverage {
			rep.Summary.MinCoverage = r.Coverage
		}
	}
	rep.Summary.Models = len(models)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
