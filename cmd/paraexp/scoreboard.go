package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"paradl/internal/workload"
)

// The trace experiment emits the seeded workload sweep as a versioned
// JSON-lines trace (header line + one scenario per line). The header
// records the generator spec, so the trace regenerates byte-identically
// from its own first line — commit it, diff it, or feed it back through
// `-exp scoreboard -trace <file>`:
//
//	paraexp -exp trace -scenarios 60 -workload-seed 1 > trace.jsonl
func writeTraceExp(w io.Writer, o options) error {
	spec := workload.GenSpec{Seed: o.workloadSeed, N: o.scenarios}
	scs, err := workload.Generate(spec)
	if err != nil {
		return err
	}
	return workload.WriteTrace(w, spec, scs)
}

// The scoreboard experiment replays every scenario of a sweep — each
// candidate plan trained for real via dist.Run AND priced by the
// measured simulator — and grades the oracle's strategy ranking against
// both measured orderings: Kendall-τ, top-1 agreement, and regret per
// scenario plus sweep-level aggregates. The committed artefact:
//
//	paraexp -exp scoreboard -scenarios 60 > SCOREBOARD.json
//
// With -trace it replays a recorded trace file instead of generating.
func writeScoreboard(w io.Writer, o options) error {
	var (
		sb  *workload.Scoreboard
		err error
	)
	if o.traceFile != "" {
		f, ferr := os.Open(o.traceFile)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		h, scs, rerr := workload.ReadTrace(f)
		if rerr != nil {
			return fmt.Errorf("reading trace %s: %w", o.traceFile, rerr)
		}
		sb, err = workload.ScoreTrace(h.Spec, scs, o.replayIters)
	} else {
		sb, err = workload.BuildScoreboard(workload.GenSpec{Seed: o.workloadSeed, N: o.scenarios}, o.replayIters)
	}
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sb)
}
