// Command paraexp regenerates the paper's evaluation artefacts — every
// table and figure of §5, as indexed in DESIGN.md — plus the repo's
// committed measurement snapshots:
//
//	paraexp -exp all
//	paraexp -exp fig3
//	paraexp -exp accuracy
//	paraexp -exp benchdist -bench-iters 10 > BENCH_dist.json
//	paraexp -exp servebench -serve-requests 50000 > BENCH_serve.json
//	paraexp -exp scoreboard -scenarios 60 > SCOREBOARD.json
//	paraexp -exp chaos -scenarios 25 -seed 1 > CHAOS.json
//
// Run with -h (or any unknown -exp value) for the full experiment
// registry with one-line descriptions.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"paradl/internal/report"
)

// options bundles every experiment's flag settings so runners share one
// signature.
type options struct {
	trials    int     // fig6: collective trials
	congested float64 // fig6: congested fraction
	seed      int64   // fig6: congestion RNG seed
	csv       bool    // machine-readable variants where available

	benchIters int // benchdist: timed runs per case

	serveRequests    int // servebench: cached-phase requests
	serveConcurrency int // servebench: in-flight workers
	serveCold        int // servebench: cold-phase requests

	scenarios    int    // trace/scoreboard: sweep size
	workloadSeed int64  // trace/scoreboard: generator seed
	replayIters  int    // scoreboard: timed runs per candidate
	traceFile    string // scoreboard: replay this trace instead of generating
}

// experiment is one registered -exp value: its name, the one-line
// description the usage text and unknown-experiment error enumerate,
// and its runner. artefact experiments are the deterministic paper
// regenerations "-exp all" runs in paper order; the rest measure real
// runtimes (or sweep them) and run only when named, so artefact
// regeneration stays deterministic and fast.
type experiment struct {
	name     string
	desc     string
	artefact bool
	run      func(w io.Writer, e *report.Env, o options) error
}

// registry returns every registered experiment in display order. In CSV
// mode the artefact set narrows to the experiments with machine-readable
// variants, mirroring what "-exp all -csv" emits.
func registry(csv bool) []experiment {
	artefacts := []experiment{
		{"table5", "Table 5 — models and datasets summary", true,
			func(w io.Writer, e *report.Env, o options) error { return e.WriteTable5(w) }},
		{"table3", "Table 3 — analytical model evaluated (ResNet-50, 64 GPUs)", true,
			func(w io.Writer, e *report.Env, o options) error { return e.WriteTable3(w, "resnet50", 64, 32) }},
		{"fig3", "Figure 3 — per-iteration breakdown: projection vs measured", true,
			func(w io.Writer, e *report.Env, o options) error { return e.WriteFig3(w) }},
		{"fig4", "Figure 4 — prediction accuracy, CosmoFlow Data+Spatial", true,
			func(w io.Writer, e *report.Env, o options) error { return e.WriteFig4(w) }},
		{"fig5", "Figure 5 — scaling comparison across strategies", true,
			func(w io.Writer, e *report.Env, o options) error { return e.WriteFig5(w) }},
		{"fig6", "Figure 6 — congestion: collective time vs α–β expectation", true,
			func(w io.Writer, e *report.Env, o options) error {
				return e.WriteFig6(w, o.trials, o.congested, o.seed)
			}},
		{"fig7", "Figure 7 — computation split per iteration", true,
			func(w io.Writer, e *report.Env, o options) error { return e.WriteFig7(w) }},
		{"fig8", "Figure 8 — filter-parallel compute breakdown, ResNet-50", true,
			func(w io.Writer, e *report.Env, o options) error { return e.WriteFig8(w) }},
		{"table6", "Table 6 — detected limitations and bottlenecks (VGG16)", true,
			func(w io.Writer, e *report.Env, o options) error { return e.WriteTable6(w, "vgg16", 64, 32) }},
		{"accuracy", "per-strategy prediction accuracy summary", true,
			func(w io.Writer, e *report.Env, o options) error { return e.WriteAccuracy(w) }},
	}
	if csv {
		artefacts = []experiment{
			{"fig3", "Figure 3 grid, one CSV row per cell", true,
				func(w io.Writer, e *report.Env, o options) error { return e.WriteFig3CSV(w) }},
			{"fig4", "Figure 4 CosmoFlow accuracy series as CSV", true,
				func(w io.Writer, e *report.Env, o options) error { return e.WriteFig4CSV(w) }},
			{"fig6", "Figure 6 congestion scatter as CSV", true,
				func(w io.Writer, e *report.Env, o options) error {
					return e.WriteFig6CSV(w, o.trials, o.congested, o.seed)
				}},
			{"accuracy", "accuracy summary as CSV", true,
				func(w io.Writer, e *report.Env, o options) error { return e.WriteAccuracyCSV(w) }},
		}
	}
	measured := []experiment{
		{"benchdist", "REAL partitioned-runtime perf snapshot (BENCH_dist.json)", false,
			func(w io.Writer, e *report.Env, o options) error { return writeBenchDist(w, o.benchIters) }},
		{"servebench", "planner HTTP service under load (BENCH_serve.json)", false,
			func(w io.Writer, e *report.Env, o options) error {
				return writeServeBench(w, o.serveRequests, o.serveConcurrency, o.serveCold)
			}},
		{"trace", "seeded workload sweep as a reproducible JSON-lines trace", false,
			func(w io.Writer, e *report.Env, o options) error { return writeTraceExp(w, o) }},
		{"scoreboard", "replay a seeded sweep; oracle ranking-fidelity scores (SCOREBOARD.json)", false,
			func(w io.Writer, e *report.Env, o options) error { return writeScoreboard(w, o) }},
		{"chaos", "randomized fault-schedule soak; recovery + parity verdicts (CHAOS.json)", false,
			func(w io.Writer, e *report.Env, o options) error { return writeChaos(w, o) }},
		{"phases", "traced per-phase measured-vs-projected table (PHASES.json)", false,
			func(w io.Writer, e *report.Env, o options) error { return writePhases(w, e) }},
	}
	return append(artefacts, measured...)
}

// describeExperiments renders the registry as the usage/error listing:
// one aligned "name  description" line per experiment, with "all"
// first.
func describeExperiments(csv bool) string {
	var b strings.Builder
	rows := append([]experiment{{name: "all", desc: "every paper artefact below, in order"}}, registry(csv)...)
	width := 0
	for _, x := range rows {
		if len(x.name) > width {
			width = len(x.name)
		}
	}
	for _, x := range rows {
		fmt.Fprintf(&b, "  %-*s  %s\n", width, x.name, x.desc)
	}
	return b.String()
}

func main() {
	exp := flag.String("exp", "all", "experiment to run (see the registry below)")
	o := options{}
	flag.IntVar(&o.trials, "trials", 12, "fig6: number of collective trials")
	flag.Float64Var(&o.congested, "congested", 0.35, "fig6: fraction of congested trials")
	flag.Int64Var(&o.seed, "seed", 7, "fig6: congestion RNG seed; chaos: base seed the per-scenario schedules derive from")
	flag.BoolVar(&o.csv, "csv", false, "emit machine-readable CSV (fig3, fig4, fig6, accuracy)")
	flag.IntVar(&o.benchIters, "bench-iters", 5, "benchdist: timed runs per case")
	flag.IntVar(&o.serveRequests, "serve-requests", 50000, "servebench: cached-phase request count")
	flag.IntVar(&o.serveConcurrency, "serve-concurrency", 0, "servebench: in-flight workers (0 = 4×GOMAXPROCS)")
	flag.IntVar(&o.serveCold, "serve-cold", 64, "servebench: cold-phase request count (all-distinct keys)")
	flag.IntVar(&o.scenarios, "scenarios", 60, "trace/scoreboard: scenarios sampled from the sweep lattice; chaos: fault schedules soaked")
	flag.Int64Var(&o.workloadSeed, "workload-seed", 1, "trace/scoreboard: generator seed (recorded in the trace header)")
	flag.IntVar(&o.replayIters, "replay-iters", 1, "scoreboard: timed real-runtime runs per candidate")
	flag.StringVar(&o.traceFile, "trace", "", "scoreboard: replay this JSON-lines trace file instead of generating")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: paraexp -exp <experiment> [flags]\n\nexperiments:\n%s\nflags:\n", describeExperiments(false))
		flag.PrintDefaults()
	}
	flag.Parse()

	if err := run(os.Stdout, *exp, o); err != nil {
		fmt.Fprintln(os.Stderr, "paraexp:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, exp string, o options) error {
	e := report.NewEnv()
	ran := false
	for _, x := range registry(o.csv) {
		switch {
		case exp == x.name:
		case exp == "all" && x.artefact:
		default:
			continue
		}
		ran = true
		if err := x.run(w, e, o); err != nil {
			return fmt.Errorf("%s: %w", x.name, err)
		}
		if x.artefact {
			fmt.Fprintln(w)
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q; registered experiments:\n%s", exp, describeExperiments(o.csv))
	}
	return nil
}
