// Command paraexp regenerates the paper's evaluation artefacts: every
// table and figure of §5, as indexed in DESIGN.md.
//
//	paraexp -exp all
//	paraexp -exp fig3
//	paraexp -exp accuracy
//	paraexp -exp benchdist -bench-iters 10 > BENCH_dist.json
//	paraexp -exp servebench -serve-requests 50000 > BENCH_serve.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"paradl/internal/report"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table3|table5|table6|fig3|fig4|fig5|fig6|fig7|fig8|accuracy|benchdist|servebench|all")
	trials := flag.Int("trials", 12, "fig6: number of collective trials")
	congested := flag.Float64("congested", 0.35, "fig6: fraction of congested trials")
	seed := flag.Int64("seed", 7, "fig6: congestion RNG seed")
	asCSV := flag.Bool("csv", false, "emit machine-readable CSV (fig3, fig4, fig6, accuracy)")
	benchIters := flag.Int("bench-iters", 5, "benchdist: timed runs per case")
	serveRequests := flag.Int("serve-requests", 50000, "servebench: cached-phase request count")
	serveConcurrency := flag.Int("serve-concurrency", 0, "servebench: in-flight workers (0 = 4×GOMAXPROCS)")
	serveCold := flag.Int("serve-cold", 64, "servebench: cold-phase request count (all-distinct keys)")
	flag.Parse()

	if err := run(os.Stdout, *exp, *trials, *congested, *seed, *asCSV, *benchIters, *serveRequests, *serveConcurrency, *serveCold); err != nil {
		fmt.Fprintln(os.Stderr, "paraexp:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, exp string, trials int, congested float64, seed int64, asCSV bool, benchIters, serveRequests, serveConcurrency, serveCold int) error {
	// benchdist and servebench measure real runtimes rather than
	// regenerating a paper artefact, and are excluded from "all" so
	// artefact regeneration stays deterministic and fast.
	if exp == "benchdist" {
		return writeBenchDist(w, benchIters)
	}
	if exp == "servebench" {
		return writeServeBench(w, serveRequests, serveConcurrency, serveCold)
	}
	e := report.NewEnv()
	type step struct {
		name string
		fn   func() error
	}
	steps := []step{
		{"table5", func() error { return e.WriteTable5(w) }},
		{"table3", func() error { return e.WriteTable3(w, "resnet50", 64, 32) }},
		{"fig3", func() error { return e.WriteFig3(w) }},
		{"fig4", func() error { return e.WriteFig4(w) }},
		{"fig5", func() error { return e.WriteFig5(w) }},
		{"fig6", func() error { return e.WriteFig6(w, trials, congested, seed) }},
		{"fig7", func() error { return e.WriteFig7(w) }},
		{"fig8", func() error { return e.WriteFig8(w) }},
		{"table6", func() error { return e.WriteTable6(w, "vgg16", 64, 32) }},
		{"accuracy", func() error { return e.WriteAccuracy(w) }},
	}
	if asCSV {
		steps = []step{
			{"fig3", func() error { return e.WriteFig3CSV(w) }},
			{"fig4", func() error { return e.WriteFig4CSV(w) }},
			{"fig6", func() error { return e.WriteFig6CSV(w, trials, congested, seed) }},
			{"accuracy", func() error { return e.WriteAccuracyCSV(w) }},
		}
	}
	ran := false
	for _, s := range steps {
		if exp != "all" && exp != s.name {
			continue
		}
		ran = true
		if err := s.fn(); err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
		fmt.Fprintln(w)
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
