package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"paradl/internal/artifact"
	"paradl/internal/data"
	"paradl/internal/dist"
	"paradl/internal/model"
)

// The chaos experiment is the robustness analogue of the scoreboard: N
// randomized fault schedules (multi-crash, stragglers, checkpoint
// corruption, grow-back heals), each drawn from a recorded per-scenario
// seed and run end-to-end under the elastic supervisor with async disk
// checkpointing. Every scenario must recover hands-free and land at
// ≤1e-6 loss parity against uninterrupted sequential SGD — the verdicts
// are the committed artefact:
//
//	paraexp -exp chaos -scenarios 25 -seed 1 > CHAOS.json
const (
	chaosSchema  = "paradl/chaos"
	chaosVersion = 1

	chaosModel  = "tinycnn-nobn"
	chaosPlan   = "data:8"
	chaosIters  = 6
	chaosBatch  = 8
	chaosSeed   = 42 // parameter-init seed (the schedule seed varies per scenario)
	chaosLR     = 0.05
	chaosParity = 1e-6
)

// ChaosScenario is one randomized fault run's verdict.
type ChaosScenario struct {
	// Seed regenerates this scenario's schedule exactly:
	// dist.RandomFaultSchedule(Seed, p, iters).
	Seed        int64           `json:"seed"`
	Faults      []dist.Fault    `json:"faults"`
	FaultCounts map[string]int  `json:"fault_counts"`
	Recoveries  []dist.Recovery `json:"recoveries"`
	GrowBacks   int             `json:"grow_backs"`
	Recovered   bool            `json:"recovered"`
	MaxAbsDelta float64         `json:"max_abs_delta"`
	Parity      bool            `json:"parity"`
	Error       string          `json:"error,omitempty"`
	DurationMS  float64         `json:"duration_ms"`
}

// ChaosSummary aggregates the soak; the CI gate reads it with jq.
type ChaosSummary struct {
	Scenarios   int     `json:"scenarios"`
	Recovered   int     `json:"recovered"`
	ParityOK    int     `json:"parity_ok"`
	Faults      int     `json:"faults"`
	Recoveries  int     `json:"recoveries"`
	GrowBacks   int     `json:"grow_backs"`
	MaxAbsDelta float64 `json:"max_abs_delta"`
}

// ChaosReport is the committed CHAOS.json payload.
type ChaosReport struct {
	artifact.Header
	Model       string          `json:"model"`
	Plan        string          `json:"plan"`
	Iterations  int             `json:"iterations"`
	GlobalBatch int             `json:"global_batch"`
	Seed        int64           `json:"base_seed"`
	ParityTol   float64         `json:"parity_tol"`
	Scenarios   []ChaosScenario `json:"scenarios_detail"`
	Summary     ChaosSummary    `json:"summary"`
}

// writeChaos runs the soak and emits the report. Scenario seeds derive
// deterministically from the base seed, so `-scenarios N -seed S`
// always reproduces the same N schedules, byte for byte.
func writeChaos(w io.Writer, o options) error {
	if o.scenarios < 1 {
		return fmt.Errorf("chaos wants -scenarios >= 1, got %d", o.scenarios)
	}
	m, err := model.ByName(chaosModel)
	if err != nil {
		return err
	}
	pl, err := dist.ParsePlan(chaosPlan)
	if err != nil {
		return err
	}
	batches := data.Toy(m, int64(chaosIters*chaosBatch)).Batches(chaosIters, chaosBatch)
	seq := dist.RunSequential(m, chaosSeed, batches, chaosLR)

	rep := &ChaosReport{
		Header:      artifact.NewHeader(chaosSchema, chaosVersion),
		Model:       m.Name,
		Plan:        pl.String(),
		Iterations:  chaosIters,
		GlobalBatch: chaosBatch,
		Seed:        o.seed,
		ParityTol:   chaosParity,
	}
	for i := 0; i < o.scenarios; i++ {
		// Distinct, well-separated per-scenario seeds from the base seed.
		sseed := o.seed*1_000_003 + int64(i)
		sched := dist.RandomFaultSchedule(sseed, pl.P(), chaosIters)
		sc := ChaosScenario{Seed: sseed, Faults: sched.Faults, FaultCounts: map[string]int{}}
		for k, n := range sched.Counts() {
			sc.FaultCounts[string(k)] = n
		}
		dir, err := os.MkdirTemp("", "paradl-chaos-*")
		if err != nil {
			return err
		}
		start := time.Now()
		res, rerr := dist.RunElastic(m, batches, pl,
			dist.Policy{CkptEvery: 1, MaxRetries: 8, CkptDir: dir, Faults: sched},
			dist.WithSeed(chaosSeed), dist.WithLR(chaosLR))
		sc.DurationMS = float64(time.Since(start).Microseconds()) / 1000
		os.RemoveAll(dir)
		if rerr != nil {
			sc.Error = rerr.Error()
		} else {
			sc.Recovered = true
			sc.Recoveries = res.Recoveries
			for _, rec := range res.Recoveries {
				if rec.Kind == "grow-back" {
					sc.GrowBacks++
				}
			}
			sc.MaxAbsDelta = maxAbsDelta(seq.Losses, res.Losses)
			sc.Parity = !math.IsNaN(sc.MaxAbsDelta) && sc.MaxAbsDelta <= chaosParity
		}
		rep.Scenarios = append(rep.Scenarios, sc)

		rep.Summary.Scenarios++
		rep.Summary.Faults += len(sc.Faults)
		rep.Summary.Recoveries += len(sc.Recoveries)
		rep.Summary.GrowBacks += sc.GrowBacks
		if sc.Recovered {
			rep.Summary.Recovered++
		}
		if sc.Parity {
			rep.Summary.ParityOK++
		}
		if sc.MaxAbsDelta > rep.Summary.MaxAbsDelta {
			rep.Summary.MaxAbsDelta = sc.MaxAbsDelta
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// maxAbsDelta compares two loss series; length mismatch is reported as
// +Inf (a stitched series missing iterations is a recovery bug, not a
// numeric one).
func maxAbsDelta(want, got []float64) float64 {
	if len(want) != len(got) {
		return math.Inf(1)
	}
	worst := 0.0
	for i := range want {
		if d := math.Abs(got[i] - want[i]); d > worst || math.IsNaN(d) {
			worst = d
		}
	}
	return worst
}
