package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"paradl/internal/ckpt"
)

// TestElasticTrainKillSmoke is the e2e smoke of the acceptance
// criteria: -train data:4 -kill 3@2 -ckpt-every 1 recovers without
// human intervention, prints the recovery line, and still passes the
// built-in parity gate.
func TestElasticTrainKillSmoke(t *testing.T) {
	var out bytes.Buffer
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	err := runElasticTrain(&out, "data:4", "on", trainDefaultModel,
		elasticConfig{Every: 1, Kill: "3@2"}, tracePath)
	if err != nil {
		t.Fatalf("elastic -train: %v\n%s", err, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "recovered: PE 3 died at iteration 2") {
		t.Fatalf("missing recovery line in output:\n%s", s)
	}
	if !strings.Contains(s, "resumed from checkpoint at iteration 2") {
		t.Fatalf("missing resume point in output:\n%s", s)
	}
	if !strings.Contains(s, "reproduces sequential SGD value-by-value") {
		t.Fatalf("parity gate did not pass:\n%s", s)
	}
	// -trace on the elastic path: valid trace_event JSON whose
	// supervisor track carries the recovery span.
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("-trace wrote nothing: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace file is not JSON: %v", err)
	}
	names := map[string]bool{}
	for _, e := range doc.TraceEvents {
		names[e.Name] = true
		if n, ok := e.Args["name"].(string); ok {
			names[n] = true // thread_name metadata carries track labels
		}
	}
	for _, want := range []string{"recovery", "supervisor", "compute-forward"} {
		if !names[want] {
			t.Fatalf("trace missing %q event (have %v)", want, names)
		}
	}
}

// TestElasticTrainCheckpointResumeMigrate: a checkpointing run under
// data:4 leaves files in -ckpt-dir; -resume continues from the latest
// under a DIFFERENT plan (live migration) and still passes parity.
func TestElasticTrainCheckpointResumeMigrate(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := runElasticTrain(&out, "data:4", "on", trainDefaultModel,
		elasticConfig{Every: 1, Dir: dir}, ""); err != nil {
		t.Fatalf("checkpointing run: %v\n%s", err, out.String())
	}
	paths, _ := filepath.Glob(filepath.Join(dir, "ckpt-*.pdl"))
	if len(paths) != 4 {
		t.Fatalf("expected 4 checkpoints, found %v", paths)
	}
	// The completed run checkpoints at iteration 4 == schedule end;
	// -resume must refuse a nothing-left resume.
	var done bytes.Buffer
	if err := runElasticTrain(&done, "df:2x2", "on", trainDefaultModel,
		elasticConfig{Dir: dir, Resume: true}, ""); err == nil {
		t.Fatal("-resume past the end of the schedule must error")
	}
	// Roll back to the iteration-2 checkpoint and migrate data:4 → df:2x2.
	st, err := ckpt.Load(filepath.Join(dir, ckpt.FileName(2)))
	if err != nil {
		t.Fatal(err)
	}
	mid := t.TempDir()
	if _, err := ckpt.Save(mid, st); err != nil {
		t.Fatal(err)
	}
	var res bytes.Buffer
	if err := runElasticTrain(&res, "df:2x2", "on", trainDefaultModel,
		elasticConfig{Dir: mid, Resume: true}, ""); err != nil {
		t.Fatalf("-resume with migration: %v\n%s", err, res.String())
	}
	s := res.String()
	if !strings.Contains(s, "migrating to df:2x2") {
		t.Fatalf("missing migration note:\n%s", s)
	}
	if !strings.Contains(s, "reproduces sequential SGD value-by-value") {
		t.Fatalf("parity gate did not pass after migration:\n%s", s)
	}
}

func TestParseKill(t *testing.T) {
	pe, iter, err := parseKill("3@2")
	if err != nil || pe != 3 || iter != 2 {
		t.Fatalf("parseKill(3@2) = %d,%d,%v", pe, iter, err)
	}
	for _, bad := range []string{"", "3", "@", "a@2", "3@b", "-1@2", "3@-2"} {
		if _, _, err := parseKill(bad); err == nil {
			t.Fatalf("parseKill(%q) must error", bad)
		}
	}
}

// TestElasticTrainKillOutOfRange: killing a PE the plan does not have
// is a user error, not a hang.
func TestElasticTrainKillOutOfRange(t *testing.T) {
	var out bytes.Buffer
	if err := runElasticTrain(&out, "data:2", "on", trainDefaultModel,
		elasticConfig{Every: 1, Kill: "7@1"}, ""); err == nil {
		t.Fatal("-kill 7@1 on a 2-PE plan must error")
	}
}
