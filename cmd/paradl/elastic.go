// The -train elastic mode: checkpointing, failure injection with
// supervised recovery, and checkpoint resume (including live plan
// migration when the -train plan differs from the checkpoint's).
package main

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"text/tabwriter"

	"paradl/internal/ckpt"
	"paradl/internal/core"
	"paradl/internal/data"
	"paradl/internal/dist"
	"paradl/internal/model"
	"paradl/internal/nn"
	"paradl/internal/trace"
)

// elasticConfig carries the -ckpt-every/-ckpt-dir/-resume/-kill flag
// values into the elastic -train path.
type elasticConfig struct {
	Every  int
	Dir    string
	Kill   string
	Resume bool
}

func (e elasticConfig) active() bool {
	return e.Every != 0 || e.Dir != "" || e.Kill != "" || e.Resume
}

// parseKill parses a -kill "pe@iter" spec.
func parseKill(s string) (pe, iter int, err error) {
	at := strings.IndexByte(s, '@')
	if at < 0 {
		return 0, 0, fmt.Errorf("-kill wants pe@iter (e.g. 3@2), got %q", s)
	}
	pe, err1 := strconv.Atoi(s[:at])
	iter, err2 := strconv.Atoi(s[at+1:])
	if err1 != nil || err2 != nil || pe < 0 || iter < 0 {
		return 0, 0, fmt.Errorf("-kill wants nonnegative pe@iter (e.g. 3@2), got %q", s)
	}
	return pe, iter, nil
}

// runElasticTrain is runTrain with the elastic runtime engaged: the
// run checkpoints its canonical state, optionally dies on schedule and
// recovers under supervision, or resumes a previous run from disk —
// and in every case still ends with the §4.5.2 value-parity table
// against sequential SGD, because elasticity must not change what is
// computed.
func runElasticTrain(w io.Writer, planStr, overlap, modelName string, el elasticConfig, traceOut string) error {
	if overlap != "on" && overlap != "off" {
		return fmt.Errorf("-overlap must be on or off, got %q", overlap)
	}
	if el.Every < 0 {
		return fmt.Errorf("-ckpt-every wants a positive cadence, got %d", el.Every)
	}
	pl, err := dist.ParsePlan(planStr)
	if err != nil {
		return err
	}
	m, err := model.ByName(modelName)
	if err != nil {
		return err
	}
	if p := m.Params(); p > trainMaxParams {
		return fmt.Errorf("-train is toy-scale: model %q has %d parameters (> %d); pick a tiny zoo model (tinyresnet|tinycnn|tinycnn-nobn|tiny3d)",
			modelName, p, trainMaxParams)
	}
	batches := toyBatches(m)
	opts := trainOptions(overlap)
	seq, err := dist.Run(m, batches, dist.Plan{Strategy: core.Serial}, opts...)
	if err != nil {
		return err
	}

	// The elastic run gets the recorder (one Recorder spans every leg of
	// the supervised run — recovery spans land on the supervisor track);
	// the sequential baseline stays untraced.
	var rec *trace.Recorder
	if traceOut != "" {
		rec = trace.NewRecorder()
		opts = append(append([]dist.Option(nil), opts...), dist.WithTrace(rec))
	}
	var res *dist.Result
	if el.Resume {
		res, err = resumeTrain(w, m, pl, opts, el)
	} else {
		res, err = superviseTrain(w, m, batches, pl, opts, el)
	}
	if err != nil {
		return err
	}
	if rec != nil {
		if err := writeTrace(traceOut, rec); err != nil {
			return err
		}
	}
	return printElasticParity(w, pl, overlap, m, seq, res)
}

// superviseTrain runs the schedule under the elastic supervisor,
// reporting every recovery it performed.
func superviseTrain(w io.Writer, m *nn.Model, batches []dist.Batch, pl dist.Plan, opts []dist.Option, el elasticConfig) (*dist.Result, error) {
	runOpts := append([]dist.Option(nil), opts...)
	if el.Kill != "" {
		pe, iter, err := parseKill(el.Kill)
		if err != nil {
			return nil, err
		}
		if pe >= pl.P() {
			return nil, fmt.Errorf("-kill %s targets PE %d, but plan %s has only %d PEs", el.Kill, pe, pl, pl.P())
		}
		runOpts = append(runOpts, dist.WithFailAt(pe, iter))
	}
	er, err := dist.RunElastic(m, batches, pl, dist.Policy{
		CkptEvery: el.Every, CkptDir: el.Dir, MaxRetries: 3,
	}, runOpts...)
	if err != nil {
		return nil, err
	}
	for _, rec := range er.Recoveries {
		if rec.Kind == "grow-back" {
			fmt.Fprintf(w, "grew back: slot healthy at iteration %d; plan %s → %s; resumed from checkpoint at iteration %d\n",
				rec.FailIter, rec.From, rec.To, rec.ResumeIter)
			continue
		}
		fmt.Fprintf(w, "recovered: PE %d died at iteration %d; plan %s → %s; resumed from checkpoint at iteration %d\n",
			rec.PE, rec.FailIter, rec.From, rec.To, rec.ResumeIter)
	}
	return er.Result, nil
}

// resumeTrain restores the newest VALID checkpoint from -ckpt-dir
// (scanning past torn or corrupted files) and trains the remaining
// iterations of the fixed toy schedule under pl — a live plan
// migration whenever pl differs from the plan the checkpoint was
// written under.
func resumeTrain(w io.Writer, m *nn.Model, pl dist.Plan, opts []dist.Option, el elasticConfig) (*dist.Result, error) {
	st, path, err := ckpt.LatestValid(el.Dir)
	if err != nil {
		return nil, err
	}
	if st.Iter >= trainIters {
		return nil, fmt.Errorf("%s is at iteration %d: nothing left of the %d-iteration toy schedule", path, st.Iter, trainIters)
	}
	fmt.Fprintf(w, "resuming from %s: iteration %d, written under plan %s", path, st.Iter, st.Plan)
	if st.Plan != pl.String() {
		fmt.Fprintf(w, " (migrating to %s)", pl)
	}
	fmt.Fprintln(w)
	// Prefer the explicit data-cursor stream (v2 headers) for the
	// resume point; v1 files fall back to the legacy Cursor field.
	cursor := st.Cursor
	if ds, ok := st.Stream("data-cursor"); ok {
		cursor = int(ds.Next)
	}
	tail := data.Toy(m, int64(trainIters*trainBatch)).BatchesFrom(cursor, trainIters-st.Iter, trainBatch)
	res, err := dist.Run(m, tail, pl, append(append([]dist.Option(nil), opts...), dist.WithInitState(st))...)
	if err != nil {
		return nil, err
	}
	res.Losses = append(append([]float64(nil), st.Losses...), res.Losses...)
	return res, nil
}

// printElasticParity prints the value-parity table for an elastic run,
// which spans the full schedule regardless of how many times the world
// was rebuilt along the way.
func printElasticParity(w io.Writer, pl dist.Plan, overlap string, m *nn.Model, seq, res *dist.Result) error {
	if len(res.Losses) != len(seq.Losses) {
		return fmt.Errorf("elastic run produced %d losses for a %d-iteration schedule", len(res.Losses), len(seq.Losses))
	}
	fmt.Fprintf(w, "elastic training parity — %s, plan %s, global batch %d, %d iterations, overlap=%s\n",
		m.Name, pl, trainBatch, trainIters, overlap)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "iter\tsequential\telastic\tΔ\n")
	worst := 0.0
	for i := range seq.Losses {
		d := res.Losses[i] - seq.Losses[i]
		if a := math.Abs(d); a > worst || math.IsNaN(a) {
			worst = a
		}
		fmt.Fprintf(tw, "%d\t%.6f\t%.6f\t%.1e\n", i, seq.Losses[i], res.Losses[i], d)
	}
	tw.Flush()
	if worst > trainTol || math.IsNaN(worst) {
		return fmt.Errorf("elastic run diverged from sequential SGD: max |Δ| = %.3e > %g", worst, trainTol)
	}
	fmt.Fprintf(w, "elastic run reproduces sequential SGD value-by-value (max |Δ| = %.1e ≤ %g, §4.5.2)\n",
		worst, trainTol)
	return nil
}
