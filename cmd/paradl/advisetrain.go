package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"paradl/internal/core"
	"paradl/internal/dist"
	"paradl/internal/model"
	"paradl/internal/nn"
	"paradl/internal/serve"
)

// runAdviseTrain closes the loop from oracle to runtime: ask the
// advisor (in-process, or a running paraserve via -server) to rank
// strategies for the toy training budget, then execute the best
// trainable plan for real and prove value parity against sequential
// SGD. Ranked plans the runtime cannot execute are reported and
// skipped, so the command always lands on the advisor's best
// *trainable* recommendation.
func runAdviseTrain(w io.Writer, serverURL, trainModel, overlap string, gpus int) error {
	if overlap != "on" && overlap != "off" {
		return fmt.Errorf("-overlap must be on or off, got %q", overlap)
	}
	if gpus < 1 || gpus > 8 {
		return fmt.Errorf("-advise-and-train is toy-scale: -gpus %d out of range [1,8]", gpus)
	}
	m, err := model.ByName(trainModel)
	if err != nil {
		return err
	}
	if p := m.Params(); p > trainMaxParams {
		return fmt.Errorf("-advise-and-train is toy-scale: model %q has %d parameters (> %d); pick a tiny zoo model (tinyresnet|tinycnn|tinycnn-nobn|tiny3d)",
			trainModel, p, trainMaxParams)
	}

	// The advisor budget mirrors the fixed -train workload: the toy
	// batch schedule is the "dataset", the global batch is one training
	// batch, and -gpus is the resource budget being ranked.
	req := serve.Request{
		Model:       trainModel,
		GPUs:        gpus,
		BatchGlobal: trainBatch,
		D:           int64(trainIters * trainBatch),
	}
	var advs []core.Advice
	source := "in-process advisor"
	if serverURL == "" {
		cfg, err := req.Config()
		if err != nil {
			return err
		}
		if advs, err = core.Advise(cfg); err != nil {
			return err
		}
	} else {
		source = serverURL
		if advs, err = adviseHTTP(serverURL, req); err != nil {
			return err
		}
	}

	fmt.Fprintf(w, "advise-and-train — %s, %d PEs, global batch %d (%s)\n", m.Name, gpus, trainBatch, source)
	for _, a := range advs {
		pl := planFromAdvice(a.Projection)
		if !a.Projection.Feasible {
			fmt.Fprintf(w, "  rank %d: %v → plan %s, skipped: projected infeasible\n", a.Rank, a.Projection.Strategy, pl)
			continue
		}
		if err := tryPlan(m, pl, overlap); err != nil {
			fmt.Fprintf(w, "  rank %d: %v → plan %s, skipped: %v\n", a.Rank, a.Projection.Strategy, pl, err)
			continue
		}
		fmt.Fprintf(w, "  rank %d: %v → plan %s, chosen\n", a.Rank, a.Projection.Strategy, pl)
		return runPlanParity(w, pl, overlap, m, "")
	}
	return fmt.Errorf("no advised strategy is trainable for %s at %d PEs", m.Name, gpus)
}

// planFromAdvice maps an oracle projection onto an executable dist
// plan; the mapping lives in the runtime (the elastic supervisor
// re-plans with it too), this is just the CLI-local name.
func planFromAdvice(pr *core.Projection) dist.Plan {
	return dist.PlanFromProjection(pr)
}

// tryPlan runs pl once, quietly, to learn whether the runtime can
// execute it on m — the advisor ranks more strategies than the toy
// runtime necessarily supports for every model shape.
func tryPlan(m *nn.Model, pl dist.Plan, overlap string) error {
	batches := toyBatches(m)
	_, err := dist.Run(m, batches, pl, trainOptions(overlap)...)
	return err
}

// adviseHTTP queries a paraserve /advise endpoint through the
// backoff-retrying serve.Client (a saturated planner answers 503 +
// Retry-After; the client waits it out with jitter) and decodes the
// ranked response; the wire encoding round-trips the full projection,
// so the HTTP path yields exactly what core.Advise returns in process.
func adviseHTTP(serverURL string, req serve.Request) ([]core.Advice, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	url := strings.TrimSuffix(serverURL, "/") + "/advise"
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	raw, status, err := serve.NewClient().PostJSON(ctx, url, body)
	if err != nil {
		return nil, fmt.Errorf("querying %s: %w", url, err)
	}
	if status != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			return nil, fmt.Errorf("server: %s", e.Error)
		}
		return nil, fmt.Errorf("server: status %d: %s", status, raw)
	}
	var advs []core.Advice
	if err := json.Unmarshal(raw, &advs); err != nil {
		return nil, fmt.Errorf("decoding advice: %w", err)
	}
	if len(advs) == 0 {
		return nil, fmt.Errorf("server returned no advice")
	}
	return advs, nil
}
