// Command paradl is the oracle CLI: it projects computation time,
// communication time and per-PE memory for a CNN model under any of the
// paper's parallelization strategies, ranks all strategies for a
// resource budget (ParaDL's "suggesting the best strategy" use, §4.1),
// or — with -train — executes a plan for real on the tiny zoo and
// prints the value-parity table against sequential SGD.
//
// Examples:
//
//	paradl -model resnet50 -strategy data -gpus 64 -batch 32
//	paradl -model vgg16 -advise -gpus 256 -batch 8
//	paradl -model cosmoflow -strategy ds -gpus 64 -p2 4 -batch-global 16
//	paradl -calibrate
//	paradl -train ds:2x2
//	paradl -train dp:2x3
//	paradl -train data:4 -model tinyresnet
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"text/tabwriter"

	"paradl/internal/cluster"
	"paradl/internal/core"
	"paradl/internal/data"
	"paradl/internal/dist"
	"paradl/internal/model"
	"paradl/internal/nn"
	"paradl/internal/profile"
	"paradl/internal/report"
	"paradl/internal/trace"
)

func main() {
	var (
		modelName   = flag.String("model", "resnet50", "model: resnet50|resnet152|vgg16|cosmoflow")
		strategy    = flag.String("strategy", "data", "strategy: data|spatial|pipeline|filter|channel|df|ds|serial")
		gpus        = flag.Int("gpus", 64, "total number of GPUs")
		batch       = flag.Int("batch", 32, "samples per GPU (weak scaling)")
		batchGlobal = flag.Int("batch-global", 0, "global mini-batch (overrides -batch; for strong scaling)")
		p1          = flag.Int("p1", 0, "hybrid: number of data-parallel groups")
		p2          = flag.Int("p2", 0, "hybrid: model-parallel PEs per group")
		segments    = flag.Int("segments", 4, "pipeline micro-batch segments S")
		phi         = flag.Float64("phi", 0, "contention coefficient φ (0 = automatic)")
		advise      = flag.Bool("advise", false, "rank all strategies instead of projecting one")
		findings    = flag.Bool("findings", false, "report detected limitations/bottlenecks (Table 6)")
		calibrate   = flag.Bool("calibrate", false, "re-derive α/β from fabric benchmarks before projecting")
		measured    = flag.Bool("measured", false, "run the REAL toy-scale runtime (internal/dist) at -gpus PEs and print measured vs projected strategy overhead")
		train       = flag.String("train", "", "execute a plan (e.g. data:4, ds:2x2, dp:2x3) for REAL and print the value-parity table vs sequential SGD; -model picks the toy zoo model (default tinycnn-nobn; tinyresnet runs the residual DAG)")
		overlap     = flag.String("overlap", "on", "with -train: backward/communication overlap, on|off (losses are bit-identical either way; off runs the blocking A/B baseline)")
		adviseTrain = flag.Bool("advise-and-train", false, "ask the advisor for the best strategy at -gpus PEs (toy scale, default 4), then execute the top trainable plan for REAL and print the parity table")
		server      = flag.String("server", "", "with -advise-and-train: query a running paraserve URL (e.g. http://localhost:8080) instead of the in-process advisor")
		ckptEvery   = flag.Int("ckpt-every", 0, "with -train: checkpoint the canonical training state every N iterations (elastic runtime)")
		ckptDir     = flag.String("ckpt-dir", "", "with -train: persist checkpoints into this directory; also the source for -resume")
		resume      = flag.Bool("resume", false, "with -train: resume from the latest checkpoint in -ckpt-dir instead of starting fresh (the -train plan may differ from the checkpoint's — live migration)")
		kill        = flag.String("kill", "", "with -train: inject a PE failure as pe@iter (e.g. 3@2) and let the elastic supervisor recover")
		traceOut    = flag.String("trace", "", "with -train: write the executed plan's per-PE phase timeline as Chrome trace_event JSON to this file (open in ui.perfetto.dev)")
		cpuprofile  = flag.String("cpuprofile", "", "with -train: write a CPU profile of the run to this file")
		memprofile  = flag.String("memprofile", "", "with -train: write a heap profile at exit to this file")
	)
	flag.Parse()

	if *measured || *train != "" || *adviseTrain {
		// -measured runs a FIXED toy workload (tinycnn-nobn, global
		// batch 8) and -train/-advise-and-train a fixed toy batch
		// schedule; silently dropping projection flags would let a user
		// believe they measured the model they named. -train and
		// -advise-and-train DO honour -model (a zoo lookup: tinyresnet
		// exercises the DAG executor).
		mode, keep := "-measured", " (only -gpus selects the width)"
		switch {
		case *train != "":
			mode, keep = "-train", " (the plan selects strategy and widths; -model picks the toy zoo model)"
		case *adviseTrain:
			mode, keep = "-advise-and-train", " (the advisor selects the plan; -model picks the toy zoo model, -gpus the budget)"
		}
		var conflict []string
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "strategy", "batch", "batch-global", "p1", "p2", "segments", "phi", "advise", "findings", "calibrate":
				conflict = append(conflict, "-"+f.Name)
			case "model":
				if *measured {
					conflict = append(conflict, "-"+f.Name)
				}
			case "gpus":
				if *train != "" {
					conflict = append(conflict, "-"+f.Name)
				}
			case "measured", "train":
				if *adviseTrain {
					conflict = append(conflict, "-"+f.Name)
				} else if f.Name == "measured" && *train != "" {
					conflict = append(conflict, "-"+f.Name)
				}
			}
		})
		if len(conflict) > 0 {
			fmt.Fprintf(os.Stderr, "paradl: %s runs the fixed toy workload and is incompatible with %s%s\n",
				mode, strings.Join(conflict, ", "), keep)
			os.Exit(1)
		}
	}
	overlapSet, modelSet, gpusSet := false, false, false
	flag.Visit(func(f *flag.Flag) {
		overlapSet = overlapSet || f.Name == "overlap"
		modelSet = modelSet || f.Name == "model"
		gpusSet = gpusSet || f.Name == "gpus"
	})
	if overlapSet && *train == "" && !*adviseTrain {
		fmt.Fprintln(os.Stderr, "paradl: -overlap selects the real runtime's exchange mode and requires -train or -advise-and-train")
		os.Exit(1)
	}
	if *server != "" && !*adviseTrain {
		fmt.Fprintln(os.Stderr, "paradl: -server points -advise-and-train at a paraserve instance and requires it")
		os.Exit(1)
	}
	el := elasticConfig{Every: *ckptEvery, Dir: *ckptDir, Kill: *kill, Resume: *resume}
	if el.active() && *train == "" {
		fmt.Fprintln(os.Stderr, "paradl: -ckpt-every/-ckpt-dir/-resume/-kill drive the elastic runtime and require -train")
		os.Exit(1)
	}
	if *resume && *ckptDir == "" {
		fmt.Fprintln(os.Stderr, "paradl: -resume restores from -ckpt-dir, which is required")
		os.Exit(1)
	}
	if *resume && *kill != "" {
		fmt.Fprintln(os.Stderr, "paradl: -resume and -kill are mutually exclusive (resume continues a run; kill injects a failure into a fresh one)")
		os.Exit(1)
	}
	if (*traceOut != "" || *cpuprofile != "" || *memprofile != "") && *train == "" {
		fmt.Fprintln(os.Stderr, "paradl: -trace/-cpuprofile/-memprofile instrument the real runtime and require -train")
		os.Exit(1)
	}
	trainModel := trainDefaultModel
	if modelSet {
		trainModel = *modelName
	}
	// The advisor budget defaults to a toy width, not the projection
	// default of 64 GPUs.
	trainGpus := 4
	if gpusSet {
		trainGpus = *gpus
	}

	if *train != "" && el.active() {
		if err := withProfiles(*cpuprofile, *memprofile, func() error {
			return runElasticTrain(os.Stdout, *train, *overlap, trainModel, el, *traceOut)
		}); err != nil {
			fmt.Fprintln(os.Stderr, "paradl:", err)
			os.Exit(1)
		}
		return
	}

	if err := withProfiles(*cpuprofile, *memprofile, func() error {
		return run(*modelName, *strategy, *gpus, *batch, *batchGlobal, *p1, *p2,
			*segments, *phi, *advise, *findings, *calibrate, *measured, *train, *overlap, trainModel,
			*adviseTrain, *server, trainGpus, *traceOut)
	}); err != nil {
		fmt.Fprintln(os.Stderr, "paradl:", err)
		os.Exit(1)
	}
}

// withProfiles brackets fn with the -cpuprofile/-memprofile collectors;
// empty paths are pass-through. The heap profile is written after fn
// returns (post-GC), profiling the run's retained state.
func withProfiles(cpu, mem string, fn func() error) error {
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	err := fn()
	if mem != "" {
		f, ferr := os.Create(mem)
		if ferr != nil {
			if err == nil {
				err = ferr
			}
			return err
		}
		defer f.Close()
		runtime.GC()
		if werr := pprof.WriteHeapProfile(f); werr != nil && err == nil {
			err = werr
		}
	}
	return err
}

// writeTrace dumps rec as Chrome trace_event JSON to path. Call only
// after the traced run has returned (the writers have quiesced).
func writeTrace(path string, rec *trace.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func run(modelName, strategyName string, gpus, batch, batchGlobal, p1, p2, segments int,
	phi float64, advise, findings, calibrate, measured bool, train, overlap, trainModel string,
	adviseTrain bool, server string, trainGpus int, traceOut string) error {
	if adviseTrain {
		return runAdviseTrain(os.Stdout, server, trainModel, overlap, trainGpus)
	}
	if train != "" {
		return runTrain(os.Stdout, train, overlap, trainModel, traceOut)
	}
	if measured {
		// The real runtime executes on this host, so widths stay toy
		// scale; RuntimeOverhead validates the bound.
		e := report.NewEnv()
		if err := e.WriteRuntimeOverhead(os.Stdout, gpus); err != nil {
			return err
		}
		fmt.Println()
		return e.WritePhaseBreakdown(os.Stdout)
	}
	m, err := model.ByName(modelName)
	if err != nil {
		return err
	}
	sys := cluster.Default()
	if calibrate {
		sys, err = profile.CalibrateSystem(sys)
		if err != nil {
			return err
		}
		fmt.Println("α/β re-derived from fabric benchmarks:")
		for _, lvl := range []cluster.LinkLevel{cluster.IntraNode, cluster.IntraRack, cluster.InterRack} {
			ab := sys.NCCL[lvl]
			fmt.Printf("  %-11v α=%.1fµs β⁻¹=%.1f GB/s\n", lvl, ab.Alpha*1e6, 1e-9/ab.Beta)
		}
	}
	ds, err := data.ForModel(modelName)
	if err != nil {
		return err
	}
	b := batch * gpus
	perPE := batch
	if batchGlobal > 0 {
		b = batchGlobal
		perPE = maxInt(1, batchGlobal/gpus)
	}
	dev := profile.NewDevice(sys.GPU)
	cfg := core.Config{
		Model:    m,
		Sys:      sys,
		Times:    profile.ProfileModel(dev, m, perPE),
		D:        ds.Samples,
		B:        b,
		P:        gpus,
		P1:       p1,
		P2:       p2,
		Segments: segments,
		Phi:      phi,
	}

	if advise {
		return printAdvice(cfg)
	}
	s, err := core.ParseStrategy(strategyName)
	if err != nil {
		return err
	}
	pr, err := core.Project(cfg, s)
	if err != nil {
		return err
	}
	printProjection(pr)
	if findings {
		printFindings(pr)
	}
	return nil
}

func printProjection(pr *core.Projection) {
	cfg := pr.Config
	fmt.Printf("ParaDL projection — %s, %v, %d GPUs, global batch %d (D=%d)\n",
		cfg.Model.Name, pr.Strategy, cfg.P, cfg.B, cfg.D)
	iter := pr.Iter()
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "phase\tper iteration\tper epoch\n")
	row := func(name string, it, ep float64) {
		if ep == 0 {
			return
		}
		fmt.Fprintf(tw, "%s\t%.2f ms\t%.1f s\n", name, it*1e3, ep)
	}
	row("FW compute", iter.FW, pr.Epoch.FW)
	row("BW compute", iter.BW, pr.Epoch.BW)
	row("WU compute", iter.WU, pr.Epoch.WU)
	row("GE allreduce", iter.GE, pr.Epoch.GE)
	row("FB collectives", iter.FBComm, pr.Epoch.FBComm)
	row("halo exchange", iter.Halo, pr.Epoch.Halo)
	row("pipeline P2P", iter.PipeP2P, pr.Epoch.PipeP2P)
	row("scatter/gather", iter.Scatter, pr.Epoch.Scatter)
	fmt.Fprintf(tw, "TOTAL\t%.2f ms\t%.1f s\n", iter.Total()*1e3, pr.Epoch.Total())
	tw.Flush()
	fmt.Printf("memory/PE: %.2f GB (device %.0f GB)   scaling limit: %d PEs   feasible: %v\n",
		pr.MemoryPerPE/1e9, cfg.Sys.GPU.MemBytes/1e9, pr.MaxPE, pr.Feasible)
	for _, n := range pr.Notes {
		fmt.Println("  note:", n)
	}
}

func printAdvice(cfg core.Config) error {
	advs, err := core.Advise(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("strategy ranking — %s on %d GPUs, global batch %d\n", cfg.Model.Name, cfg.P, cfg.B)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "rank\tstrategy\titer total\tcomp\tcomm\tmem/PE\tfeasible")
	for _, a := range advs {
		pr := a.Projection
		it := pr.Iter()
		fmt.Fprintf(tw, "%d\t%v\t%.2f ms\t%.2f ms\t%.2f ms\t%.1f GB\t%v\n",
			a.Rank, pr.Strategy, it.Total()*1e3, it.Comp()*1e3, it.Comm()*1e3,
			pr.MemoryPerPE/1e9, pr.Feasible)
	}
	return tw.Flush()
}

func printFindings(pr *core.Projection) {
	fs := core.DetectFindings(pr)
	if len(fs) == 0 {
		fmt.Println("no limitations or bottlenecks detected at this configuration")
		return
	}
	for _, f := range fs {
		fmt.Printf("  [%s] %s — %s: %s\n", f.Kind, f.Category, f.Remark, f.Detail)
	}
}

// The fixed -train workload schedule: toy scale so the run finishes in
// milliseconds on one host. The model comes from the zoo (-model; the
// default admits every strategy, tinyresnet exercises the DAG
// executor), bounded to toy parameter counts so the CLI cannot be
// pointed at an hours-long ImageNet-scale run by accident.
const (
	trainDefaultModel = "tinycnn-nobn"
	trainBatch        = 8
	trainIters        = 4
	trainSeed         = 42
	trainLR           = 0.05
	trainTol          = 1e-6
	trainMaxParams    = 1 << 20
)

// runTrain executes planStr for real (internal/dist) on a toy zoo
// model and prints the per-iteration value-parity table vs sequential
// SGD — the §4.5.2 methodology as a CLI one-liner. A parity violation
// is an error: the command doubles as a runtime smoke test. overlap
// ("on" or "off") selects the gradient-exchange mode, so the
// backward/comm overlap A/B is runnable from the CLI; both modes must
// print the same losses bit for bit.
func runTrain(w io.Writer, planStr, overlap, modelName, traceOut string) error {
	if overlap != "on" && overlap != "off" {
		return fmt.Errorf("-overlap must be on or off, got %q", overlap)
	}
	pl, err := dist.ParsePlan(planStr)
	if err != nil {
		return err
	}
	m, err := model.ByName(modelName)
	if err != nil {
		return err
	}
	if p := m.Params(); p > trainMaxParams {
		return fmt.Errorf("-train is toy-scale: model %q has %d parameters (> %d); pick a tiny zoo model (tinyresnet|tinycnn|tinycnn-nobn|tiny3d)",
			modelName, p, trainMaxParams)
	}
	return runPlanParity(w, pl, overlap, m, traceOut)
}

// toyBatches builds the fixed toy batch schedule for m.
func toyBatches(m *nn.Model) []dist.Batch {
	return data.Toy(m, int64(trainIters*trainBatch)).Batches(trainIters, trainBatch)
}

// trainOptions pins the toy training hyperparameters. The A/B bucket
// size makes -overlap a real toggle at toy scale: at the 256 KiB
// default the toy gradients fit one drain-time bucket and both modes
// would execute identically.
func trainOptions(overlap string) []dist.Option {
	return []dist.Option{dist.WithSeed(trainSeed), dist.WithLR(trainLR),
		dist.WithOverlap(overlap == "on"), dist.WithBucketBytes(dist.BenchOverlapBucketBytes)}
}

// runPlanParity executes pl for real on m and prints the per-iteration
// value-parity table vs sequential SGD — shared by -train (explicit
// plan) and -advise-and-train (advisor-chosen plan).
func runPlanParity(w io.Writer, pl dist.Plan, overlap string, m *nn.Model, traceOut string) error {
	batches := toyBatches(m)
	opts := trainOptions(overlap)
	// The trace observes the NAMED plan's run only; the sequential
	// baseline stays untraced (except for -train serial, where the
	// baseline IS the run).
	var rec *trace.Recorder
	tracedOpts := opts
	if traceOut != "" {
		rec = trace.NewRecorder()
		tracedOpts = append(append([]dist.Option(nil), opts...), dist.WithTrace(rec))
	}
	seqOpts := opts
	if pl.Strategy == core.Serial {
		seqOpts = tracedOpts
	}
	seq, err := dist.Run(m, batches, dist.Plan{Strategy: core.Serial}, seqOpts...)
	if err != nil {
		return err
	}
	res := seq // -train serial: the baseline IS the run
	if pl.Strategy != core.Serial {
		if res, err = dist.Run(m, batches, pl, tracedOpts...); err != nil {
			return err
		}
	}
	if rec != nil {
		if err := writeTrace(traceOut, rec); err != nil {
			return err
		}
	}

	fmt.Fprintf(w, "real training parity — %s, plan %s (%d PEs), global batch %d, %d iterations, overlap=%s\n",
		m.Name, pl, pl.P(), trainBatch, trainIters, overlap)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "iter\tsequential\t%s\tΔ\n", pl)
	worst := 0.0
	for i := range batches {
		d := res.Losses[i] - seq.Losses[i]
		if a := math.Abs(d); a > worst || math.IsNaN(a) {
			worst = a
		}
		fmt.Fprintf(tw, "%d\t%.6f\t%.6f\t%.1e\n", i, seq.Losses[i], res.Losses[i], d)
	}
	tw.Flush()
	if worst > trainTol || math.IsNaN(worst) {
		return fmt.Errorf("plan %s diverged from sequential SGD: max |Δ| = %.3e > %g", pl, worst, trainTol)
	}
	fmt.Fprintf(w, "plan %s reproduces sequential SGD value-by-value (max |Δ| = %.1e ≤ %g, §4.5.2)\n",
		pl, worst, trainTol)
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
