package main

import "testing"

func TestRunSingleProjection(t *testing.T) {
	if err := run("resnet50", "data", 64, 32, 0, 0, 0, 4, 0, false, false, false, false, "", "on", trainDefaultModel, false, "", 4, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunAdvise(t *testing.T) {
	if err := run("vgg16", "", 64, 8, 0, 0, 0, 4, 0, true, false, false, false, "", "on", trainDefaultModel, false, "", 4, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunHybridWithSplit(t *testing.T) {
	if err := run("resnet50", "df", 64, 8, 0, 16, 4, 4, 0, false, true, false, false, "", "on", trainDefaultModel, false, "", 4, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunHybridDerivesMissingAxis(t *testing.T) {
	// The doc-comment example: -strategy ds -gpus 64 -p2 4 (no -p1).
	if err := run("cosmoflow", "ds", 64, 0, 16, 0, 4, 4, 0, false, false, false, false, "", "on", trainDefaultModel, false, "", 4, ""); err != nil {
		t.Fatal(err)
	}
	if err := run("resnet50", "df", 64, 8, 0, 16, 0, 4, 0, false, false, false, false, "", "on", trainDefaultModel, false, "", 4, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunStrongScalingFilter(t *testing.T) {
	if err := run("resnet50", "filter", 16, 0, 32, 0, 0, 4, 0, false, false, false, false, "", "on", trainDefaultModel, false, "", 4, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunCalibrated(t *testing.T) {
	if err := run("cosmoflow", "ds", 16, 0, 4, 4, 4, 4, 0, false, false, true, false, "", "on", trainDefaultModel, false, "", 4, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsUnknownModel(t *testing.T) {
	if err := run("alexnet", "data", 4, 4, 0, 0, 0, 4, 0, false, false, false, false, "", "on", trainDefaultModel, false, "", 4, ""); err == nil {
		t.Fatal("unknown model must error")
	}
}

func TestRunRejectsUnknownStrategy(t *testing.T) {
	if err := run("resnet50", "quantum", 4, 4, 0, 0, 0, 4, 0, false, false, false, false, "", "on", trainDefaultModel, false, "", 4, ""); err == nil {
		t.Fatal("unknown strategy must error")
	}
}

func TestRunMeasuredOverhead(t *testing.T) {
	// -measured runs the real dist runtime; p=2 keeps it quick.
	if err := run("resnet50", "data", 2, 4, 0, 0, 0, 4, 0, false, false, false, true, "", "on", trainDefaultModel, false, "", 4, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunMeasuredRejectsClusterScale(t *testing.T) {
	if err := run("resnet50", "data", 64, 4, 0, 0, 0, 4, 0, false, false, false, true, "", "on", trainDefaultModel, false, "", 4, ""); err == nil {
		t.Fatal("-measured at 64 PEs must error: the real runtime is toy-scale")
	}
}

// TestRunTrainPlans: -train executes plan strings — pure, hybrid, and
// the plan-only data×pipeline — on the tiny zoo and passes its own
// built-in parity gate.
func TestRunTrainPlans(t *testing.T) {
	for _, plan := range []string{"serial", "data:2", "filter:2", "ds:2x2", "dp:2x3"} {
		if err := run("", "", 0, 0, 0, 0, 0, 0, 0, false, false, false, false, plan, "on", trainDefaultModel, false, "", 4, ""); err != nil {
			t.Fatalf("-train %s: %v", plan, err)
		}
	}
}

// TestRunTrainOverlapOff: the -overlap=off A/B baseline runs the same
// parity gate on the blocking exchange; a bad mode string errors.
func TestRunTrainOverlapOff(t *testing.T) {
	if err := run("", "", 0, 0, 0, 0, 0, 0, 0, false, false, false, false, "data:4", "off", trainDefaultModel, false, "", 4, ""); err != nil {
		t.Fatalf("-train data:4 -overlap=off: %v", err)
	}
	if err := run("", "", 0, 0, 0, 0, 0, 0, 0, false, false, false, false, "data:4", "maybe", trainDefaultModel, false, "", 4, ""); err == nil {
		t.Fatal("-overlap=maybe must error")
	}
}

func TestRunTrainRejectsBadPlans(t *testing.T) {
	for _, plan := range []string{"df:3x0", "quantum:2", "data:2x2", "pipeline:99"} {
		if err := run("", "", 0, 0, 0, 0, 0, 0, 0, false, false, false, false, plan, "on", trainDefaultModel, false, "", 4, ""); err == nil {
			t.Fatalf("-train %s must error", plan)
		}
	}
}

// TestRunTrainTinyResNet: -model tinyresnet runs the DAG executor
// through the -train parity gate — the acceptance criterion's
// `paradl -train data:4 -model tinyresnet` one-liner — plus a residual
// hybrid and the serial degenerate case.
func TestRunTrainTinyResNet(t *testing.T) {
	for _, plan := range []string{"data:4", "dp:2x2", "serial"} {
		if err := run("", "", 0, 0, 0, 0, 0, 0, 0, false, false, false, false, plan, "on", "tinyresnet", false, "", 4, ""); err != nil {
			t.Fatalf("-train %s -model tinyresnet: %v", plan, err)
		}
	}
}

// TestRunTrainModelLookup: -train resolves -model through the zoo and
// stays toy-scale.
func TestRunTrainModelLookup(t *testing.T) {
	if err := run("", "", 0, 0, 0, 0, 0, 0, 0, false, false, false, false, "data:2", "on", "tiny3d", false, "", 4, ""); err != nil {
		t.Fatalf("-train data:2 -model tiny3d: %v", err)
	}
	if err := run("", "", 0, 0, 0, 0, 0, 0, 0, false, false, false, false, "data:2", "on", "alexnet", false, "", 4, ""); err == nil {
		t.Fatal("-train with an unknown model must error")
	}
	if err := run("", "", 0, 0, 0, 0, 0, 0, 0, false, false, false, false, "data:2", "on", "resnet50", false, "", 4, ""); err == nil {
		t.Fatal("-train with an ImageNet-scale model must be rejected as beyond toy scale")
	}
}
