package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"

	"paradl/internal/serve"
)

// -advise-and-train with the in-process advisor: the top trainable plan
// is executed and reproduces sequential SGD.
func TestAdviseAndTrainInProcess(t *testing.T) {
	var buf bytes.Buffer
	if err := runAdviseTrain(&buf, "", trainDefaultModel, "on", 4); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "chosen") {
		t.Fatalf("no plan chosen:\n%s", out)
	}
	if !strings.Contains(out, "reproduces sequential SGD value-by-value") {
		t.Fatalf("no parity verdict:\n%s", out)
	}
}

// chosenLine extracts the "rank N: … chosen" line of an
// advise-and-train transcript.
func chosenLine(t *testing.T, out string) string {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "chosen") {
			return strings.TrimSpace(line)
		}
	}
	t.Fatalf("no chosen line in:\n%s", out)
	return ""
}

// The -server path must pick exactly the plan the in-process advisor
// picks: the wire encoding round-trips the ranking bit for bit.
func TestAdviseAndTrainViaServer(t *testing.T) {
	ts := httptest.NewServer(serve.New().Handler())
	defer ts.Close()

	var local, remote bytes.Buffer
	if err := runAdviseTrain(&local, "", "tinyresnet", "on", 4); err != nil {
		t.Fatal(err)
	}
	if err := runAdviseTrain(&remote, ts.URL, "tinyresnet", "on", 4); err != nil {
		t.Fatal(err)
	}
	lc, rc := chosenLine(t, local.String()), chosenLine(t, remote.String())
	if lc != rc {
		t.Fatalf("server-advised plan differs from in-process plan:\nlocal:  %s\nremote: %s", lc, rc)
	}
	// The parity tables (everything below the advisor transcript) must
	// match exactly: same plan, same toy run, same losses.
	cut := func(s string) string {
		i := strings.Index(s, "real training parity")
		if i < 0 {
			t.Fatalf("no parity table in:\n%s", s)
		}
		return s[i:]
	}
	if cut(local.String()) != cut(remote.String()) {
		t.Fatalf("parity tables differ:\nlocal:\n%s\nremote:\n%s", local.String(), remote.String())
	}
}

func TestAdviseAndTrainRejects(t *testing.T) {
	var buf bytes.Buffer
	if err := runAdviseTrain(&buf, "", trainDefaultModel, "on", 0); err == nil {
		t.Fatal("gpus=0 must error")
	}
	if err := runAdviseTrain(&buf, "", trainDefaultModel, "on", 64); err == nil {
		t.Fatal("gpus=64 must error (toy scale)")
	}
	if err := runAdviseTrain(&buf, "", "resnet50", "on", 4); err == nil {
		t.Fatal("ImageNet-scale model must error")
	}
	if err := runAdviseTrain(&buf, "", trainDefaultModel, "maybe", 4); err == nil {
		t.Fatal("bad overlap must error")
	}
	if err := runAdviseTrain(&buf, "http://127.0.0.1:1", trainDefaultModel, "on", 4); err == nil {
		t.Fatal("unreachable server must error")
	}
}
