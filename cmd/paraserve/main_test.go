package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"paradl/internal/serve"
)

// The binary's serving loop end to end: listen on an ephemeral port,
// probe /healthz, get ranked advice over real HTTP, then shut down
// gracefully by cancelling the context.
func TestServeEndToEnd(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := serve.New()
	done := make(chan error, 1)
	go func() { done <- serveUntil(ctx, ln, s.Handler(), s.BeginDrain) }()
	base := fmt.Sprintf("http://%s", ln.Addr())

	var health serve.Health
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			derr := json.NewDecoder(resp.Body).Decode(&health)
			resp.Body.Close()
			if derr != nil {
				t.Fatal(derr)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never became healthy: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if health.Status != "ok" || health.UptimeSeconds < 0 || health.GoVersion == "" {
		t.Fatalf("healthz payload %+v, want status=ok, nonnegative uptime, build info", health)
	}

	ready, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	ready.Body.Close()
	if ready.StatusCode != http.StatusOK {
		t.Fatalf("readyz answered %d before drain, want 200", ready.StatusCode)
	}

	resp, err := http.Post(base+"/advise", "application/json",
		strings.NewReader(`{"model":"resnet50","gpus":64,"batch":32}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var advs []struct {
		Rank       int `json:"rank"`
		Projection struct {
			Strategy string `json:"strategy"`
		} `json:"projection"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&advs); err != nil {
		t.Fatal(err)
	}
	if len(advs) == 0 || advs[0].Rank != 1 || advs[0].Projection.Strategy == "" {
		t.Fatalf("advice not ranked: %+v", advs)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serving loop did not exit after context cancellation")
	}
}

// TestGracefulShutdownDrains pins the drain guarantee: a request that
// is mid-handler when shutdown begins still completes with its full
// response, while the listener stops accepting new connections.
func TestGracefulShutdownDrains(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	inFlight := make(chan struct{})
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(inFlight)
		time.Sleep(300 * time.Millisecond)
		io.WriteString(w, "drained")
	})
	done := make(chan error, 1)
	go func() { done <- serveUntil(ctx, ln, slow, nil) }()

	type reply struct {
		body string
		err  error
	}
	got := make(chan reply, 1)
	go func() {
		resp, err := http.Get(fmt.Sprintf("http://%s/slow", ln.Addr()))
		if err != nil {
			got <- reply{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		got <- reply{body: string(b), err: err}
	}()

	<-inFlight // the request is mid-handler…
	cancel()   // …when the SIGTERM-equivalent arrives

	r := <-got
	if r.err != nil || r.body != "drained" {
		t.Fatalf("in-flight request not drained: body %q, err %v", r.body, r.err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serving loop did not exit after drain")
	}
	if _, err := http.Get(fmt.Sprintf("http://%s/slow", ln.Addr())); err == nil {
		t.Fatal("listener still accepting connections after shutdown")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	ctx := context.Background()
	if err := run(ctx, "127.0.0.1:0", 0, 1, 1, time.Second); err == nil {
		t.Fatal("want error for zero cache entries")
	}
	if err := run(ctx, "127.0.0.1:0", 8, 0, 1, time.Second); err == nil {
		t.Fatal("want error for zero concurrency")
	}
	if err := run(ctx, "256.0.0.1:bad", 8, 1, 1, time.Second); err == nil {
		t.Fatal("want error for bad address")
	}
}
