package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"paradl/internal/serve"
)

// The binary's serving loop end to end: listen on an ephemeral port,
// probe /healthz, and get ranked advice over real HTTP.
func TestServeEndToEnd(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := serve.New()
	srv := &http.Server{Handler: s.Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	base := fmt.Sprintf("http://%s", ln.Addr())

	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never became healthy: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Post(base+"/advise", "application/json",
		strings.NewReader(`{"model":"resnet50","gpus":64,"batch":32}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var advs []struct {
		Rank       int `json:"rank"`
		Projection struct {
			Strategy string `json:"strategy"`
		} `json:"projection"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&advs); err != nil {
		t.Fatal(err)
	}
	if len(advs) == 0 || advs[0].Rank != 1 || advs[0].Projection.Strategy == "" {
		t.Fatalf("advice not ranked: %+v", advs)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if err := run("127.0.0.1:0", 0); err == nil {
		t.Fatal("want error for zero cache entries")
	}
	if err := run("256.0.0.1:bad", 8); err == nil {
		t.Fatal("want error for bad address")
	}
}
