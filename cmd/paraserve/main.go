// Command paraserve runs the ParaDL oracle as a service: a concurrent
// HTTP planner that answers projection, advice, and sweep queries from
// a content-addressed cache with singleflight deduplication.
//
// The serving loop shuts down gracefully: SIGINT/SIGTERM stops the
// listener immediately and drains in-flight requests before exiting.
//
//	paraserve -addr :8080
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/advise -d '{"model":"resnet50","gpus":64,"batch":32}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"paradl/internal/serve"
)

// drainTimeout bounds how long shutdown waits for in-flight requests.
const drainTimeout = 10 * time.Second

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheEntries := flag.Int("cache-entries", serve.DefaultCacheEntries, "projection cache capacity (entries)")
	maxConcurrent := flag.Int("max-concurrent", serve.DefaultMaxConcurrent, "planning requests served concurrently")
	maxQueue := flag.Int("max-queue", serve.DefaultMaxQueue, "admission queue depth beyond which requests are shed with 503")
	reqTimeout := flag.Duration("request-timeout", serve.DefaultRequestTimeout, "per-request deadline (queue wait included)")
	pprofAddr := flag.String("pprof-addr", "", "optional address for net/http/pprof (e.g. localhost:6060); empty disables")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *pprofAddr != "" {
		if err := startPprof(*pprofAddr); err != nil {
			fmt.Fprintln(os.Stderr, "paraserve:", err)
			os.Exit(1)
		}
	}
	if err := run(ctx, *addr, *cacheEntries, *maxConcurrent, *maxQueue, *reqTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "paraserve:", err)
		os.Exit(1)
	}
}

// startPprof serves the net/http/pprof handlers on their own listener,
// kept off the planner's mux so profiling endpoints never share a port
// (or an admission gate) with production traffic.
func startPprof(addr string) error {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("pprof listener: %w", err)
	}
	fmt.Fprintf(os.Stderr, "paraserve: pprof on %s\n", ln.Addr())
	go http.Serve(ln, mux)
	return nil
}

// run listens on addr and serves the planner until ctx is cancelled
// (SIGINT/SIGTERM in the binary), then drains and exits cleanly.
func run(ctx context.Context, addr string, cacheEntries, maxConcurrent, maxQueue int, reqTimeout time.Duration) error {
	if cacheEntries < 1 {
		return fmt.Errorf("cache-entries must be positive, got %d", cacheEntries)
	}
	if maxConcurrent < 1 {
		return fmt.Errorf("max-concurrent must be positive, got %d", maxConcurrent)
	}
	s := serve.New(
		serve.WithCacheEntries(cacheEntries),
		serve.WithAdmission(maxConcurrent, maxQueue),
		serve.WithRequestTimeout(reqTimeout),
	)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "paraserve: listening on %s (cache %d entries, %d slots + %d queue, %s deadline)\n",
		ln.Addr(), cacheEntries, maxConcurrent, maxQueue, reqTimeout)
	if err := serveUntil(ctx, ln, s.Handler(), s.BeginDrain); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "paraserve: drained in-flight requests, shut down cleanly")
	return nil
}

// serveUntil serves h on ln until ctx is cancelled, then shuts down
// gracefully: beginDrain (when non-nil) flips readiness to draining
// first (load balancers stop routing, new planning work is shed with
// 503), the listener closes, and requests already in flight get up to
// drainTimeout to finish.
func serveUntil(ctx context.Context, ln net.Listener, h http.Handler, beginDrain func()) error {
	srv := &http.Server{Handler: h}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	if beginDrain != nil {
		beginDrain()
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("drain incomplete after %s: %w", drainTimeout, err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
