// Command paraserve runs the ParaDL oracle as a service: a concurrent
// HTTP planner that answers projection, advice, and sweep queries from
// a content-addressed cache with singleflight deduplication.
//
// The serving loop shuts down gracefully: SIGINT/SIGTERM stops the
// listener immediately and drains in-flight requests before exiting.
//
//	paraserve -addr :8080
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/advise -d '{"model":"resnet50","gpus":64,"batch":32}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"paradl/internal/serve"
)

// drainTimeout bounds how long shutdown waits for in-flight requests.
const drainTimeout = 10 * time.Second

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheEntries := flag.Int("cache-entries", serve.DefaultCacheEntries, "projection cache capacity (entries)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := run(ctx, *addr, *cacheEntries); err != nil {
		fmt.Fprintln(os.Stderr, "paraserve:", err)
		os.Exit(1)
	}
}

// run listens on addr and serves the planner until ctx is cancelled
// (SIGINT/SIGTERM in the binary), then drains and exits cleanly.
func run(ctx context.Context, addr string, cacheEntries int) error {
	if cacheEntries < 1 {
		return fmt.Errorf("cache-entries must be positive, got %d", cacheEntries)
	}
	s := serve.New(serve.WithCacheEntries(cacheEntries))
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "paraserve: listening on %s (cache %d entries)\n", ln.Addr(), cacheEntries)
	if err := serveUntil(ctx, ln, s.Handler()); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "paraserve: drained in-flight requests, shut down cleanly")
	return nil
}

// serveUntil serves h on ln until ctx is cancelled, then shuts down
// gracefully: the listener closes at once so no new work is accepted,
// while requests already in flight get up to drainTimeout to finish.
func serveUntil(ctx context.Context, ln net.Listener, h http.Handler) error {
	srv := &http.Server{Handler: h}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("drain incomplete after %s: %w", drainTimeout, err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
