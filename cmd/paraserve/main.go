// Command paraserve runs the ParaDL oracle as a service: a concurrent
// HTTP planner that answers projection, advice, and sweep queries from
// a content-addressed cache with singleflight deduplication.
//
//	paraserve -addr :8080
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/advise -d '{"model":"resnet50","gpus":64,"batch":32}'
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"

	"paradl/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheEntries := flag.Int("cache-entries", serve.DefaultCacheEntries, "projection cache capacity (entries)")
	flag.Parse()

	if err := run(*addr, *cacheEntries); err != nil {
		fmt.Fprintln(os.Stderr, "paraserve:", err)
		os.Exit(1)
	}
}

// run listens on addr and serves the planner until the process exits.
func run(addr string, cacheEntries int) error {
	if cacheEntries < 1 {
		return fmt.Errorf("cache-entries must be positive, got %d", cacheEntries)
	}
	s := serve.New(serve.WithCacheEntries(cacheEntries))
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "paraserve: listening on %s (cache %d entries)\n", ln.Addr(), cacheEntries)
	return http.Serve(ln, s.Handler())
}
