module paradl

go 1.24
